// Command experiments regenerates the reproduction tables E1–E11 and ablations A1–A2 (see
// DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// results).
//
// Usage:
//
//	experiments [-run E4[,E5,...]] [-quick] [-seed N] [-csv] [-workers N]
//	            [-memo BYTES|auto|off] [-timeout 30s] [-journal run.jsonl]
//	            [-metrics] [-trace] [-pprof ADDR]
//	            [-progress] [-progress-interval 1s]
//
// With no -run flag every experiment is executed in order. Empty
// fields in -run (trailing or doubled commas) are ignored.
//
// Observability: -journal appends one JSON line per invocation (args,
// seed, timings, peak memory, final metrics, per-experiment spans);
// -metrics dumps the metric registry to stderr at exit; -trace prints
// the span tree (per-experiment phase timings) to stderr; -pprof
// serves /debug/pprof, /debug/vars, and /debug/progress on ADDR.
// -progress adds live telemetry at the -progress-interval cadence: a
// rewriting stderr status line showing the experiment being run,
// sweep completion (with ETA), cell counters, and engine counters
// (DFS nodes/sec, memo occupancy), plus heartbeat records in the
// journal when -journal is set.
//
// Robustness: -timeout bounds the sweep; the deadline and SIGINT share
// one cancellation path, so either way the run degrades to "tables
// completed so far" — the table being cut is rendered truncated with a
// note, later experiments are skipped, and the journal entry is marked
// timed_out or interrupted with the completed/truncated/skipped IDs
// under "partial". A deadline exit is status 0; an interrupt exits 130.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"shufflenet/internal/experiments"
	"shufflenet/internal/obs"
)

func main() {
	run := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	quick := flag.Bool("quick", false, "reduced problem sizes")
	seed := flag.Int64("seed", 1, "random seed (experiments are deterministic per seed)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	workers := flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	memoSpec := flag.String("memo", "auto", "transposition table for the optimum experiments (A2, A3): byte size, \"auto\", or \"off\"; never changes any table cell")
	journal := flag.String("journal", "", "append a run-journal JSON line to this path")
	metrics := flag.Bool("metrics", false, "dump the metric registry to stderr at exit")
	trace := flag.Bool("trace", false, "print the span tree (phase timings) to stderr at exit")
	pprofAddr := flag.String("pprof", "", "serve /debug/pprof, /debug/vars, and /debug/progress on this address")
	progress := flag.Bool("progress", false, "emit live progress: stderr status line, plus journal heartbeats when -journal is set")
	progressIvl := flag.Duration("progress-interval", time.Second, "cadence of -progress snapshots")
	timeout := flag.Duration("timeout", 0, "stop the sweep after this duration (0 = none); completed tables are kept")
	flag.Parse()

	var runners []experiments.Runner
	if *run == "" {
		runners = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue // tolerate trailing / doubled commas: -run "E1, E2,"
			}
			r := experiments.Find(id)
			if r == nil {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; available:\n", id)
				for _, a := range experiments.All() {
					fmt.Fprintf(os.Stderr, "  %s  %s\n", a.ID, a.Brief)
				}
				os.Exit(2)
			}
			runners = append(runners, *r)
		}
		if len(runners) == 0 {
			fmt.Fprintln(os.Stderr, "-run selected no experiments")
			os.Exit(2)
		}
	}

	memoBytes, err := parseMemo(*memoSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}

	cli, err := obs.StartCLI("experiments", *journal, *metrics, *pprofAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	cli.Entry.Seed = *seed
	cli.Entry.Set("quick", *quick)
	cli.Entry.Set("workers", *workers)
	cli.Entry.Set("memo_bytes", memoBytes) // 0 = auto, negative = off
	ctx := cli.SetupContext(*timeout)

	// The sweep-level source is registered before any engine source (the
	// optimum searches register theirs per search), so it owns the
	// snapshot's completion fraction and the ETA covers the whole sweep.
	var prog *obs.Progress
	var sweepDone atomic.Int64
	var current atomic.Value // experiment ID being run
	current.Store("")
	if *progress {
		prog = cli.StartProgress(*progressIvl)
		total := int64(len(runners))
		prog.Register(func(s *obs.Sample) {
			done := sweepDone.Load()
			s.Field("sweep.done", done)
			s.Field("sweep.total", total)
			if id, _ := current.Load().(string); id != "" {
				s.Field("sweep.current", id)
			}
			s.SetFraction(float64(done), float64(total))
		})
	}

	root := obs.NewSpan("experiments")
	timings := map[string]float64{} // experiment ID → milliseconds
	var completed, skipped []string
	truncated := ""
	finish := func() {
		root.End()
		cli.Entry.Set("experiments", timings)
		cli.Entry.AddSpans(root)
		if ctx.Err() != nil {
			cli.Entry.SetPartial(map[string]any{
				"completed": completed,
				"truncated": truncated,
				"skipped":   skipped,
			})
		}
		if *trace {
			fmt.Fprintln(os.Stderr, "--- spans (experiments) ---")
			root.WriteTree(os.Stderr)
		}
		cli.Finish()
	}

	for i, r := range runners {
		if ctx.Err() != nil {
			for _, rest := range runners[i:] {
				skipped = append(skipped, rest.ID)
			}
			fmt.Fprintf(os.Stderr, "experiments: canceled (%v); skipping %v\n", ctx.Err(), skipped)
			break
		}
		if i > 0 {
			fmt.Println()
		}
		cfg := experiments.Config{Seed: *seed, Quick: *quick, Workers: *workers, MemoBytes: memoBytes, Ctx: ctx, Progress: prog}
		cfg.Span = root.Child(r.ID, obs.A("brief", r.Brief))
		current.Store(r.ID)
		start := time.Now()
		tab := r.Run(cfg)
		cfg.Span.End()
		sweepDone.Add(1)
		timings[r.ID] = float64(cfg.Span.Duration()) / float64(time.Millisecond)
		if ctx.Err() != nil {
			truncated = r.ID // table rendered below, but cut short mid-sweep
		} else {
			completed = append(completed, r.ID)
		}
		var err error
		if *csv {
			err = tab.RenderCSV(os.Stdout)
		} else {
			err = tab.Render(os.Stdout)
			fmt.Printf("(%s in %v, seed %d)\n", r.ID, time.Since(start).Round(time.Millisecond), *seed)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			finish()
			os.Exit(1)
		}
	}
	finish()
	os.Exit(cli.ExitCode())
}

// parseMemo parses the -memo flag: "auto" (or empty) = 0, "off" = -1,
// otherwise a positive byte count.
func parseMemo(s string) (int64, error) {
	switch s {
	case "", "auto":
		return 0, nil
	case "off":
		return -1, nil
	}
	b, err := strconv.ParseInt(s, 10, 64)
	if err != nil || b <= 0 {
		return 0, fmt.Errorf("-memo must be a positive byte count, %q, or %q (got %q)", "auto", "off", s)
	}
	return b, nil
}
