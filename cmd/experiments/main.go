// Command experiments regenerates the reproduction tables E1–E11 and ablations A1–A2 (see
// DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// results).
//
// Usage:
//
//	experiments [-run E4[,E5,...]] [-quick] [-seed N] [-csv] [-workers N]
//
// With no -run flag every experiment is executed in order.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"shufflenet/internal/experiments"
)

func main() {
	run := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	quick := flag.Bool("quick", false, "reduced problem sizes")
	seed := flag.Int64("seed", 1, "random seed (experiments are deterministic per seed)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	workers := flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	flag.Parse()

	cfg := experiments.Config{Seed: *seed, Quick: *quick, Workers: *workers}

	var runners []experiments.Runner
	if *run == "" {
		runners = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			r := experiments.Find(strings.TrimSpace(id))
			if r == nil {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; available:\n", id)
				for _, a := range experiments.All() {
					fmt.Fprintf(os.Stderr, "  %s  %s\n", a.ID, a.Brief)
				}
				os.Exit(2)
			}
			runners = append(runners, *r)
		}
	}

	for i, r := range runners {
		if i > 0 {
			fmt.Println()
		}
		start := time.Now()
		tab := r.Run(cfg)
		var err error
		if *csv {
			err = tab.RenderCSV(os.Stdout)
		} else {
			err = tab.Render(os.Stdout)
			fmt.Printf("(%s in %v, seed %d)\n", r.ID, time.Since(start).Round(time.Millisecond), *seed)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
