// Command optcoord coordinates a distributed exact optimum search:
// it serves a circuit to adversary -optimal -coord worker processes,
// leases them chunks of the 81-prefix search frontier, merges the
// packed incumbents they report (an integer max — see DESIGN.md §4,
// decision 14), re-leases chunks whose worker went quiet, and verifies
// the final witness against the circuit with the existing checker
// before reporting it.
//
// Usage:
//
//	optcoord -file net.txt [-addr :8091] [-chunk 8] [-lease-ttl 30s]
//	         [-resume run.jsonl] [-linger 3s] [-v]
//	         [-journal run.jsonl] [-metrics] [-pprof ADDR]
//	         [-progress] [-progress-interval 1s]
//
// Endpoints (JSON): GET /v1/net, POST /v1/lease, POST /v1/report,
// GET /v1/result.
//
// With -journal, every reported chunk is checkpointed as prefix_done
// records; -resume reads such a journal (from a killed coordinator or
// a single-process adversary -optimal -journal run) and only leases
// the prefixes still missing — the merged result is byte-identical to
// an uninterrupted run. After the frontier completes, the coordinator
// keeps serving for -linger so late workers can learn the search is
// done, then exits. SIGINT/SIGTERM stops early; the journal then holds
// the frontier completed so far, ready for -resume.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"shufflenet/internal/coord"
	"shufflenet/internal/core"
	"shufflenet/internal/network"
	"shufflenet/internal/obs"
)

func main() {
	file := flag.String("file", "", "circuit to search (network.WriteText format; required)")
	addr := flag.String("addr", ":8091", "listen address")
	chunk := flag.Int("chunk", coord.DefaultChunk, "frontier prefixes per lease")
	leaseTTL := flag.Duration("lease-ttl", coord.DefaultLeaseTTL, "how long a lease may sit unreported before it is re-issued")
	resume := flag.String("resume", "", "resume from this journal's frontier records (skips completed prefixes)")
	linger := flag.Duration("linger", 3*time.Second, "keep serving this long after the frontier completes, so polling workers learn the result")
	verbose := flag.Bool("v", false, "print the witness pattern and set")
	journal := flag.String("journal", "", "append the run entry and per-chunk frontier checkpoints to this JSONL path")
	metrics := flag.Bool("metrics", false, "dump the metric registry to stderr at exit")
	pprofAddr := flag.String("pprof", "", "serve /debug/pprof, /debug/vars, and /debug/progress on this address")
	progress := flag.Bool("progress", false, "emit live progress: stderr status line, plus journal heartbeats when -journal is set")
	progressIvl := flag.Duration("progress-interval", time.Second, "cadence of -progress snapshots")
	flag.Parse()

	cli, err := obs.StartCLI("optcoord", *journal, *metrics, *pprofAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "optcoord:", err)
		os.Exit(1)
	}
	fail := func(msg string) {
		fmt.Fprintln(os.Stderr, "optcoord:", msg)
		cli.Entry.Set("error", msg)
		cli.Finish()
		os.Exit(1)
	}
	ctx := cli.SetupContext(0) // canceled by SIGINT/SIGTERM
	var prog *obs.Progress
	if *progress {
		prog = cli.StartProgress(*progressIvl)
	}

	if *file == "" {
		fail("-file is required (the circuit the workers will search)")
	}
	f, err := os.Open(*file)
	if err != nil {
		fail(err.Error())
	}
	circ, err := network.ReadText(f)
	f.Close()
	if err != nil {
		fail("parse: " + err.Error())
	}
	n := circ.Wires()
	if n > core.MaxOptimalWires {
		fail(fmt.Sprintf("the optimum search handles at most %d wires (core.MaxOptimalWires); the circuit has %d", core.MaxOptimalWires, n))
	}
	fp := core.NetworkFingerprint(circ)
	prefixes := core.OptimalPrefixes(n)
	fmt.Printf("optcoord: %v from %s, fingerprint %s, frontier %d prefixes\n", circ, *file, fp, prefixes)
	cli.Entry.Set("file", *file)
	cli.Entry.Set("n", n)
	cli.Entry.Set("fingerprint", fp)
	cli.Entry.Set("chunk", *chunk)

	var fr *coord.Frontier
	var seed uint64
	if *resume != "" {
		fr, err = coord.ParseResumeJournalFile(*resume)
		if err != nil {
			fail("-resume: " + err.Error())
		}
		if fr.Net != fp {
			fail(fmt.Sprintf("-resume: journal %s checkpoints network %s, but -file is %s (different circuit)", *resume, fr.Net, fp))
		}
		seed = fr.Seed
		fmt.Printf("optcoord: resuming from %s: seq %d, %d/%d prefixes already done\n",
			*resume, fr.LastSeq, len(fr.Done), prefixes)
		cli.Entry.Set("resume", map[string]any{"from": *resume, "from_seq": fr.LastSeq, "skipped": len(fr.Done)})
	}

	fw := coord.NewFrontierWriter(cli.Journal(), cli.Entry.Run)
	if err := fw.Init(fp, n, prefixes, seed); err != nil {
		fail("journal: " + err.Error())
	}
	if fr != nil {
		if err := fw.Resumed(*resume, fr.LastSeq, len(fr.Done), prefixes, fr.Seed); err != nil {
			fail("journal: " + err.Error())
		}
	}

	co, err := coord.New(circ, coord.Options{
		Chunk:    *chunk,
		LeaseTTL: *leaseTTL,
		Frontier: fr,
		Writer:   fw,
		Progress: prog,
	})
	if err != nil {
		fail(err.Error())
	}
	defer co.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err.Error())
	}
	hs := &http.Server{Handler: co.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Printf("optcoord: listening on %s\n", ln.Addr())
	cli.Entry.Set("addr", ln.Addr().String())

	start := time.Now()
	exit := 0
	packed, waitErr := co.Wait(ctx)
	if waitErr == nil {
		// Let polling workers observe completion before the socket goes
		// away, then drain.
		time.Sleep(*linger)
		size, p, set := core.DecodeOptimalWitness(n, packed)
		cli.Entry.Set("optimal_d", size)
		cli.Entry.Set("verified", co.Verified())
		fmt.Printf("optimal noncolliding [M_0]-set: %d of %d wires (exact, merged, %v)\n",
			size, n, time.Since(start).Round(time.Millisecond))
		if *verbose {
			fmt.Printf("  witness pattern: %v\n", p)
			fmt.Printf("  set: %v\n", set)
		}
		if co.Verified() {
			fmt.Println("witness verified against the circuit (pattern.Noncolliding)")
		} else {
			fmt.Println("witness verification FAILED — do not trust this result")
			exit = 1
		}
	} else {
		got, _ := co.Result()
		fmt.Fprintf(os.Stderr, "optcoord: stopped before completion (%v); best merged incumbent so far packs size %d; the journal's prefix_done records are ready for -resume\n",
			waitErr, got>>(2*uint(n)))
	}

	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	err = hs.Shutdown(sctx)
	cancel()
	if err != nil {
		fmt.Fprintln(os.Stderr, "optcoord: shutdown:", err)
	}
	select {
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "optcoord:", err)
			exit = 1
		}
	default:
	}
	cli.Finish()
	if exit == 0 {
		exit = cli.ExitCode()
		if exit == 130 {
			// An interrupted coordinator exits through the journal with
			// its frontier intact; that is an orderly stop for -resume,
			// but keep the shell convention.
		}
	}
	os.Exit(exit)
}
