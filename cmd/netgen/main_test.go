package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunFlagValidation pins the CLI contract: flag combinations that
// would silently drop a flag are errors, not surprises.
func TestRunFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"no source", []string{}, "need -preset or -net"},
		{"unknown preset", []string{"-preset", "nope"}, `unknown preset "nope"`},
		{"preset with net", []string{"-preset", "sortkernels", "-net", "bitonic"}, "-preset conflicts with -net"},
		{"preset with pkg", []string{"-preset", "sortkernels", "-pkg", "x"}, "-preset conflicts with -pkg"},
		{"preset with widths", []string{"-preset", "sortkernels", "-widths", "2..4"}, "-preset conflicts with -widths"},
		{"preset with mode", []string{"-preset", "sortkernels", "-mode", "batch"}, "-preset conflicts with -mode"},
		{"net without pkg", []string{"-net", "bitonic"}, "need -pkg with -net"},
		{"unknown mode", []string{"-net", "bitonic", "-pkg", "x", "-mode", "vector"}, `unknown -mode "vector"`},
		{"unknown family", []string{"-net", "quantum", "-pkg", "x"}, `unknown family "quantum"`},
		{"bad widths", []string{"-net", "bitonic", "-pkg", "x", "-widths", "8..2"}, `bad range "8..2"`},
		{"positional junk", []string{"-net", "bitonic", "-pkg", "x", "extra"}, "unexpected arguments: extra"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var out, errw strings.Builder
			err := run(tc.args, &out, &errw)
			if err == nil {
				t.Fatalf("run(%q) succeeded, want error containing %q", tc.args, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("run(%q) error %q, want it to contain %q", tc.args, err, tc.wantErr)
			}
		})
	}
}

// TestRunModes checks the -mode flag end to end: each mode writes its
// own file set.
func TestRunModes(t *testing.T) {
	for _, tc := range []struct {
		mode       string
		want, stop []string
	}{
		{"scalar", []string{"kern.go", "kernels_int.go"}, []string{"batch.go"}},
		{"batch", []string{"batch.go", "batch_int.go", "batch_amd64.s"}, []string{"kern.go", "kernels_int.go"}},
		{"all", []string{"kern.go", "kernels_int.go", "batch.go", "batch_amd64.go"}, nil},
	} {
		t.Run(tc.mode, func(t *testing.T) {
			dir := t.TempDir()
			var out, errw strings.Builder
			args := []string{"-net", "bestknown", "-widths", "4,8", "-pkg", "kern", "-mode", tc.mode, "-out", dir}
			if err := run(args, &out, &errw); err != nil {
				t.Fatal(err)
			}
			for _, name := range tc.want {
				if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
					t.Errorf("mode %s: missing %s", tc.mode, name)
				}
			}
			for _, name := range tc.stop {
				if _, err := os.Stat(filepath.Join(dir, name)); err == nil {
					t.Errorf("mode %s: unexpectedly wrote %s", tc.mode, name)
				}
			}
			if !strings.Contains(out.String(), "netgen: wrote") {
				t.Errorf("missing success line, got %q", out.String())
			}
		})
	}
}
