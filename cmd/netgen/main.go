// netgen compiles comparator networks into standalone branchless Go
// sorting kernels (via internal/netgen) and writes them out as a
// generated package.
//
// usage:
//
//	netgen -preset sortkernels [-out DIR]
//	netgen -net FAMILY -widths 2..16 -pkg NAME -out DIR
//	netgen -net file:PATH -pkg NAME -out DIR
//
// The -preset form regenerates the committed sortkernels/ package:
// one kernel per width 2..16 from the curated depth-optimal networks
// (netbuild.BestKnown), for every element family. `make netgen-check`
// regenerates into a scratch directory and fails on any drift between
// the committed files and what the generator emits.
//
// -net accepts the construction families the other tools use
// (bestknown, depthoptimal, bitonic, oddeven, mergeexchange,
// insertion, transposition, pratt) plus file:<path> (circuit text
// format) and regfile:<path> (register text format), whose width comes
// from the file itself. -widths takes comma-separated entries, each a
// width or an a..b range.
//
// Emission is deterministic: same networks, same flags, same bytes.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"shufflenet/internal/netbuild"
	"shufflenet/internal/netgen"
	"shufflenet/internal/network"
)

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "netgen: "+msg)
	os.Exit(1)
}

var builders = map[string]func(int) *network.Network{
	"bestknown":     netbuild.BestKnown,
	"depthoptimal":  netbuild.DepthOptimal,
	"bitonic":       netbuild.Bitonic,
	"oddeven":       netbuild.OddEvenMergeSort,
	"mergeexchange": netbuild.MergeExchange,
	"insertion":     netbuild.Insertion,
	"transposition": netbuild.OddEvenTransposition,
	"pratt":         netbuild.Pratt,
}

// parseWidths accepts "2..16", "4,8,16", "2..8,12,16".
func parseWidths(spec string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if lo, hi, ok := strings.Cut(part, ".."); ok {
			a, err1 := strconv.Atoi(lo)
			b, err2 := strconv.Atoi(hi)
			if err1 != nil || err2 != nil || a > b {
				return nil, fmt.Errorf("bad range %q", part)
			}
			for n := a; n <= b; n++ {
				out = append(out, n)
			}
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad width %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// sortkernelsDoc is the package comment of the committed preset.
var sortkernelsDoc = []string{
	"Package sortkernels holds branchless sorting-network kernels for",
	"widths 2..16, generated from the curated depth-optimal networks in",
	"internal/netbuild. Each kernel keeps the whole slice in locals and",
	"applies a fixed compare-exchange schedule, level by level, with no",
	"data-dependent branches on the integer families — the comparator",
	"count is the depth-optimal network's size, and the level grouping",
	"leaves independent exchanges adjacent for the CPU to overlap.",
	"",
	"Regenerate with `make netgen`; `make netgen-check` fails the build",
	"if the committed files drift from what cmd/netgen emits.",
}

func main() {
	preset := flag.String("preset", "", "named generation preset: sortkernels")
	net := flag.String("net", "", "network source: construction family, file:<path>, or regfile:<path>")
	widths := flag.String("widths", "2..16", "widths to generate for construction families")
	pkg := flag.String("pkg", "", "generated package name")
	out := flag.String("out", "", "output directory (default ./<pkg>)")
	flag.Parse()

	opts := netgen.Options{}
	var progs []*network.Program

	switch {
	case *preset == "sortkernels":
		opts.Package = "sortkernels"
		opts.Command = "go run ./cmd/netgen -preset sortkernels"
		opts.Doc = sortkernelsDoc
		opts.Provenance = map[int]string{}
		for n := 2; n <= 16; n++ {
			c := netbuild.DepthOptimal(n)
			opts.Provenance[n] = fmt.Sprintf("depth-optimal (proven minimum %d)", netbuild.OptimalDepths[n])
			progs = append(progs, c.Compile())
		}
	case *preset != "":
		fail("unknown preset " + *preset)
	case *net == "":
		fail("need -preset or -net (see -h)")
	default:
		if *pkg == "" {
			fail("need -pkg with -net")
		}
		opts.Package = *pkg
		opts.Command = fmt.Sprintf("go run ./cmd/netgen -net %s -widths %s -pkg %s", *net, *widths, *pkg)
		switch {
		case strings.HasPrefix(*net, "file:"):
			f, err := os.Open(strings.TrimPrefix(*net, "file:"))
			if err != nil {
				fail(err.Error())
			}
			circ, err := network.ReadText(f)
			f.Close()
			if err != nil {
				fail("parse: " + err.Error())
			}
			progs = append(progs, circ.Compile())
		case strings.HasPrefix(*net, "regfile:"):
			f, err := os.Open(strings.TrimPrefix(*net, "regfile:"))
			if err != nil {
				fail(err.Error())
			}
			reg, err := network.ReadRegisterText(f)
			f.Close()
			if err != nil {
				fail("parse: " + err.Error())
			}
			progs = append(progs, reg.Compile())
		default:
			build, ok := builders[*net]
			if !ok {
				fail("unknown family " + *net)
			}
			ns, err := parseWidths(*widths)
			if err != nil {
				fail(err.Error())
			}
			for _, n := range ns {
				progs = append(progs, build(n).Compile())
			}
		}
	}

	files, err := netgen.Generate(opts, progs)
	if err != nil {
		fail(err.Error())
	}

	dir := *out
	if dir == "" {
		dir = opts.Package
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fail(err.Error())
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), src, 0o644); err != nil {
			fail(err.Error())
		}
	}
	fmt.Printf("netgen: wrote %d files to %s (package %s, %d widths)\n", len(files), dir, opts.Package, len(progs))
}
