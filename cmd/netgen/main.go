// netgen compiles comparator networks into standalone branchless Go
// sorting kernels (via internal/netgen) and writes them out as a
// generated package.
//
// usage:
//
//	netgen -preset sortkernels [-out DIR]
//	netgen -net FAMILY -widths 2..16 -pkg NAME [-mode MODE] -out DIR
//	netgen -net file:PATH -pkg NAME [-mode MODE] -out DIR
//
// The -preset form regenerates the committed sortkernels/ package:
// one kernel per width 2..16 from the curated depth-optimal networks
// (netbuild.BestKnown), for every element family and every emission
// mode — the per-slice scalar kernels plus the batch kernels (pure-Go
// columnar/row-major, and the AVX-512 columnar kernels with their
// transpose helpers on amd64). `make netgen-check` regenerates into a
// scratch directory and fails on any drift between the committed
// files and what the generator emits.
//
// -net accepts the construction families the other tools use
// (bestknown, depthoptimal, bitonic, oddeven, mergeexchange,
// insertion, transposition, pratt) plus file:<path> (circuit text
// format) and regfile:<path> (register text format), whose width comes
// from the file itself. -widths takes comma-separated entries, each a
// width or an a..b range. -mode selects the emission modes: scalar
// (default), batch, or all; it applies to -net generation only —
// presets fix their own modes.
//
// Flag combinations that would silently drop a flag are rejected:
// -preset conflicts with -net, -pkg, -widths and -mode.
//
// Emission is deterministic: same networks, same flags, same bytes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"shufflenet/internal/netbuild"
	"shufflenet/internal/netgen"
	"shufflenet/internal/network"
)

var builders = map[string]func(int) *network.Network{
	"bestknown":     netbuild.BestKnown,
	"depthoptimal":  netbuild.DepthOptimal,
	"bitonic":       netbuild.Bitonic,
	"oddeven":       netbuild.OddEvenMergeSort,
	"mergeexchange": netbuild.MergeExchange,
	"insertion":     netbuild.Insertion,
	"transposition": netbuild.OddEvenTransposition,
	"pratt":         netbuild.Pratt,
}

// parseWidths accepts "2..16", "4,8,16", "2..8,12,16".
func parseWidths(spec string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if lo, hi, ok := strings.Cut(part, ".."); ok {
			a, err1 := strconv.Atoi(lo)
			b, err2 := strconv.Atoi(hi)
			if err1 != nil || err2 != nil || a > b {
				return nil, fmt.Errorf("bad range %q", part)
			}
			for n := a; n <= b; n++ {
				out = append(out, n)
			}
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad width %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// parseModes maps the -mode flag to emission modes; empty means the
// scalar default.
func parseModes(mode string) ([]netgen.Mode, error) {
	switch mode {
	case "", "scalar":
		return nil, nil
	case "batch":
		return []netgen.Mode{netgen.ModeBatch}, nil
	case "all":
		return netgen.AllModes, nil
	}
	return nil, fmt.Errorf("unknown -mode %q (want scalar, batch or all)", mode)
}

// sortkernelsDoc is the package comment of the committed preset.
var sortkernelsDoc = []string{
	"Package sortkernels holds branchless sorting-network kernels for",
	"widths 2..16, generated from the curated depth-optimal networks in",
	"internal/netbuild. Each kernel keeps the whole slice in locals and",
	"applies a fixed compare-exchange schedule, level by level, with no",
	"data-dependent branches on the integer families — the comparator",
	"count is the depth-optimal network's size, and the level grouping",
	"leaves independent exchanges adjacent for the CPU to overlap.",
	"",
	"The batch entry points (Batch<Kind>, BatchFlat<Kind>) sort many",
	"same-width slices per call: column-major and row-major pure-Go",
	"kernels for every width, plus AVX-512 columnar kernels and layout",
	"transposes on amd64, selected at init when the CPU supports them.",
	"",
	"Regenerate with `make netgen`; `make netgen-check` fails the build",
	"if the committed files drift from what cmd/netgen emits.",
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "netgen: "+err.Error())
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("netgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	preset := fs.String("preset", "", "named generation preset: sortkernels")
	net := fs.String("net", "", "network source: construction family, file:<path>, or regfile:<path>")
	widths := fs.String("widths", "2..16", "widths to generate for construction families")
	pkg := fs.String("pkg", "", "generated package name")
	mode := fs.String("mode", "", "emission modes for -net: scalar (default), batch, or all")
	out := fs.String("out", "", "output directory (default ./<pkg>)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %s", strings.Join(fs.Args(), " "))
	}
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })

	opts := netgen.Options{}
	var progs []*network.Program

	switch {
	case *preset != "":
		for _, conflict := range []string{"net", "pkg", "widths", "mode"} {
			if set[conflict] {
				return fmt.Errorf("-preset conflicts with -%s (presets fix their own networks, package and modes)", conflict)
			}
		}
		if *preset != "sortkernels" {
			return fmt.Errorf("unknown preset %q (want sortkernels)", *preset)
		}
		opts.Package = "sortkernels"
		opts.Command = "go run ./cmd/netgen -preset sortkernels"
		opts.Doc = sortkernelsDoc
		opts.Modes = netgen.AllModes
		opts.Provenance = map[int]string{}
		for n := 2; n <= 16; n++ {
			c := netbuild.DepthOptimal(n)
			opts.Provenance[n] = fmt.Sprintf("depth-optimal (proven minimum %d)", netbuild.OptimalDepths[n])
			progs = append(progs, c.Compile())
		}
	case *net == "":
		return fmt.Errorf("need -preset or -net (see -h)")
	default:
		if *pkg == "" {
			return fmt.Errorf("need -pkg with -net")
		}
		modes, err := parseModes(*mode)
		if err != nil {
			return err
		}
		opts.Package = *pkg
		opts.Modes = modes
		opts.Command = fmt.Sprintf("go run ./cmd/netgen -net %s -widths %s -pkg %s", *net, *widths, *pkg)
		if modes != nil {
			opts.Command += " -mode " + *mode
		}
		switch {
		case strings.HasPrefix(*net, "file:"):
			f, err := os.Open(strings.TrimPrefix(*net, "file:"))
			if err != nil {
				return err
			}
			circ, err := network.ReadText(f)
			f.Close()
			if err != nil {
				return fmt.Errorf("parse: %v", err)
			}
			progs = append(progs, circ.Compile())
		case strings.HasPrefix(*net, "regfile:"):
			f, err := os.Open(strings.TrimPrefix(*net, "regfile:"))
			if err != nil {
				return err
			}
			reg, err := network.ReadRegisterText(f)
			f.Close()
			if err != nil {
				return fmt.Errorf("parse: %v", err)
			}
			progs = append(progs, reg.Compile())
		default:
			build, ok := builders[*net]
			if !ok {
				return fmt.Errorf("unknown family %q", *net)
			}
			ns, err := parseWidths(*widths)
			if err != nil {
				return err
			}
			for _, n := range ns {
				progs = append(progs, build(n).Compile())
			}
		}
	}

	files, err := netgen.Generate(opts, progs)
	if err != nil {
		return err
	}

	dir := *out
	if dir == "" {
		dir = opts.Package
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), src, 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(stdout, "netgen: wrote %d files to %s (package %s, %d widths)\n", len(files), dir, opts.Package, len(progs))
	return nil
}
