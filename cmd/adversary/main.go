// Command adversary runs the paper's lower-bound adversary
// (Lemma 4.1 / Theorem 4.1 / Corollary 4.1.1, made constructive)
// against a chosen iterated reverse delta network and, when the
// surviving noncolliding set has at least two wires, prints and
// verifies a concrete certificate of non-sortability.
//
// Usage:
//
//	adversary -n 256 -blocks 2 [-topology butterfly|random|bitonic]
//	          [-seed N] [-k K] [-v] [-timeout 30s] [-workers N]
//	          [-journal run.jsonl] [-metrics] [-pprof ADDR]
//	          [-progress] [-progress-interval 1s]
//	adversary -file net.txt [-l L] [-save cert.json]
//	adversary -check cert.json -file net.txt
//	adversary -optimal [-memo BYTES|auto|off] [-n 16 ... | -file net.txt]
//	          [-spill table.spill [-spill-bytes N]] [-resume run.jsonl]
//	          [-coord URL]
//
// Topologies:
//
//	butterfly  iterated full butterflies with random inter-block
//	           permutations (the canonical shuffle-based stack)
//	random     random full reverse delta blocks with random glue
//	bitonic    the first -blocks stages of Batcher's bitonic sorter,
//	           expressed as an iterated RDN
//
// With -save, the certificate is written as JSON; -check verifies a
// saved certificate against a circuit file (no adversary run needed —
// the certificate is self-contained evidence).
//
// With -optimal, the constructive adversary is replaced by the exact
// branch-and-bound optimum search (core.OptimalNoncollidingOpt): the
// largest noncolliding [M_0]-set any pattern admits on the circuit,
// the quantity the A2/A3 experiments compare the adversary against.
// It handles any circuit of at most core.MaxOptimalWires = 26 wires
// (with -file, no power-of-two or RDN-structure requirement). -memo
// sizes its transposition table; the table's final hit/miss/eviction
// counters are printed and journaled.
//
// Durability and distribution of -optimal:
//
//   - -spill attaches a disk tier to the transposition table
//     (core.OpenSpillMemo): RAM evictions demote to the mmap'd file
//     instead of being dropped, and an existing file reopens warm, so
//     a later run starts with the previous run's bounds. -spill-bytes
//     sizes the file (min 64 KiB; the stored geometry wins on reopen).
//   - With -journal, the search checkpoints its 81-prefix frontier as
//     typed records (frontier_init / prefix_done) in the same JSONL
//     stream. -resume reads such a journal, skips the prefixes any
//     prior run completed, seeds the recorded incumbent, and returns
//     the byte-identical witness the uninterrupted run would have —
//     see DESIGN.md §4, decision 14 for why that is exact.
//   - -coord joins a cmd/optcoord coordinator as a worker process:
//     the circuit comes from the coordinator (no -n/-file needed),
//     leased frontier chunks are searched with this process's table,
//     and packed results are reported back for the max-merge.
//
// With -file, the circuit is loaded from the text serialization
// (network.WriteText format), its iterated reverse delta structure is
// recovered with delta.DecomposeIterated (block height -l, default
// lg n), and the adversary attacks the recovery; the certificate is
// verified against the loaded circuit itself.
//
// Observability: -journal appends one JSON line per invocation,
// including the per-block reports (survivors, surviving-set counts,
// collisions charged) and the certificate summary; -metrics dumps the
// metric registry (block counts, survivor histogram, lemma counters)
// to stderr at exit; -pprof serves /debug/pprof, /debug/vars, and
// /debug/progress. -progress adds live telemetry at the
// -progress-interval cadence: a rewriting stderr status line (blocks
// or DFS nodes done, rates, ETA from the completion fraction) and —
// when -journal is set — heartbeat records interleaved with the run
// entry, so a killed run still leaves a progress trail (see
// cmd/obsreport).
//
// Robustness: -timeout bounds the run; the deadline and SIGINT share
// one cancellation path, so either way the journal entry is flushed
// with the blocks completed so far (marked timed_out or interrupted,
// with the partial-progress fields). A deadline exit is status 0; an
// interrupt exits 130.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"sync"
	"time"

	"shufflenet/internal/bits"
	"shufflenet/internal/coord"
	"shufflenet/internal/core"
	"shufflenet/internal/delta"
	"shufflenet/internal/network"
	"shufflenet/internal/obs"
	"shufflenet/internal/par"
	"shufflenet/internal/perm"
)

func main() {
	n := flag.Int("n", 256, "number of wires (power of two)")
	blocks := flag.Int("blocks", 2, "number of reverse delta blocks")
	topology := flag.String("topology", "butterfly", "butterfly | random | bitonic")
	seed := flag.Int64("seed", 1, "random seed")
	k := flag.Int("k", 0, "averaging parameter k (0 = lg n, the paper's choice)")
	verbose := flag.Bool("v", false, "print per-block reports and the full certificate inputs")
	file := flag.String("file", "", "load a circuit (network.WriteText format) and attack its recovered RDN structure")
	blockL := flag.Int("l", 0, "block height for -file decomposition (0 = lg n)")
	save := flag.String("save", "", "write the certificate as JSON to this path")
	check := flag.String("check", "", "verify a saved certificate (JSON) against the circuit from -file, then exit")
	journal := flag.String("journal", "", "append a run-journal JSON line to this path")
	metrics := flag.Bool("metrics", false, "dump the metric registry to stderr at exit")
	pprofAddr := flag.String("pprof", "", "serve /debug/pprof, /debug/vars, and /debug/progress on this address")
	progress := flag.Bool("progress", false, "emit live progress: stderr status line, plus journal heartbeats when -journal is set")
	progressIvl := flag.Duration("progress-interval", time.Second, "cadence of -progress snapshots")
	optimal := flag.Bool("optimal", false, "run the exact optimum search instead of the constructive adversary (n <= 26; with -file, any circuit)")
	memoSpec := flag.String("memo", "auto", "transposition table for -optimal: byte size, \"auto\", or \"off\"")
	spill := flag.String("spill", "", "with -optimal: spill file for the transposition table (created, or reopened warm)")
	spillBytes := flag.Int64("spill-bytes", 256<<20, "with -spill: disk budget in bytes for a new spill file (min 64 KiB)")
	resume := flag.String("resume", "", "with -optimal: resume from this journal's frontier records, skipping completed prefixes")
	coordURL := flag.String("coord", "", "with -optimal: join the optimum-search coordinator at this URL as a worker (circuit comes from the coordinator)")
	timeout := flag.Duration("timeout", 0, "cancel the run after this duration (0 = none); partial per-block results are kept")
	workers := flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS); Theorem 4.1's recursion forks automatically, so this caps the scheduler")
	flag.Parse()

	// The adversary's parallelism is the automatic subtree fork inside
	// core.lemmaRec, which rides the Go scheduler rather than an explicit
	// pool — so the worker cap is applied as GOMAXPROCS.
	if *workers > 0 {
		runtime.GOMAXPROCS(*workers)
	}

	var err error
	cli, err = obs.StartCLI("adversary", *journal, *metrics, *pprofAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adversary:", err)
		os.Exit(1)
	}
	cli.Entry.Seed = *seed
	cli.Entry.Set("workers", *workers)
	ctx := cli.SetupContext(*timeout)
	if *progress {
		prog = cli.StartProgress(*progressIvl)
	}
	defer cli.Finish()

	if *check != "" {
		if *file == "" {
			fail("-check needs -file with the circuit to verify against")
		}
		runCheck(*check, *file)
		cli.Finish()
		return
	}
	saveCert = *save

	ocfg := optimalConfig{
		memoSpec: *memoSpec, workers: *workers, verbose: *verbose,
		resume: *resume, spill: *spill, spillBytes: *spillBytes,
	}
	if *coordURL != "" {
		if !*optimal {
			fail("-coord requires -optimal (only the optimum search is distributed)")
		}
		if *resume != "" {
			fail("-resume and -coord are mutually exclusive: the coordinator owns the frontier, workers just lease chunks of it")
		}
		runOptimalWorker(ctx, *coordURL, ocfg)
		cli.Finish()
		return
	}

	if *file != "" {
		if *optimal {
			circ := loadCircuit(*file)
			cli.Entry.Set("file", *file)
			cli.Entry.Set("n", circ.Wires())
			fmt.Printf("loaded: %v from %s\n", circ, *file)
			runOptimal(ctx, circ, ocfg)
			cli.Finish()
			return
		}
		runOnFile(ctx, *file, *blockL, *k, *verbose)
		cli.Finish()
		return
	}

	if !bits.IsPow2(*n) {
		fail("n must be a power of two")
	}
	d := bits.Lg(*n)
	rng := rand.New(rand.NewSource(*seed))

	it := delta.NewIterated(*n)
	switch *topology {
	case "butterfly":
		for b := 0; b < *blocks; b++ {
			var pre perm.Perm
			if b > 0 {
				pre = perm.Random(*n, rng)
			}
			it.AddBlock(pre, delta.Butterfly(d))
		}
	case "random":
		for b := 0; b < *blocks; b++ {
			it.AddBlock(perm.Random(*n, rng), delta.Random(d, 1.0, rng))
		}
	case "bitonic":
		if *blocks > d {
			fail(fmt.Sprintf("bitonic has only %d stages at n=%d", d, *n))
		}
		prev := perm.Identity(*n)
		for s := 1; s <= *blocks; s++ {
			rho := delta.ReverseLowBits(*n, s)
			it.AddBlock(prev.Compose(rho), delta.BitonicStage(d, s))
			prev = rho
		}
	default:
		fail("unknown topology " + *topology)
	}

	fmt.Printf("network: %s, n=%d, %d blocks, comparator depth %d, size %d\n",
		*topology, *n, it.Blocks(), it.Depth(), it.Size())
	cli.Entry.Set("topology", *topology)
	cli.Entry.Set("n", *n)
	cli.Entry.Set("blocks", *blocks)
	cli.Entry.Set("depth", it.Depth())

	if *optimal {
		circ, _ := it.ToNetwork()
		runOptimal(ctx, circ, ocfg)
		cli.Finish()
		return
	}

	sp := obs.NewSpan("theorem41", obs.A("n", *n), obs.A("blocks", *blocks))
	an, terr := core.Theorem41Prog(ctx, it, *k, prog)
	sp.End()
	cli.Entry.AddSpans(sp)
	if terr != nil {
		reportCanceled(an, terr, *verbose)
	}
	journalAnalysis(an)

	fmt.Printf("adversary: k=%d\n", an.K)
	printReports(an.Reports, *verbose)
	fmt.Printf("surviving noncolliding set D: %d wires\n", len(an.D))

	cert, err := an.Certificate()
	if err != nil {
		fmt.Printf("no certificate: %v\n", err)
		fmt.Println("(the adversary cannot rule out that this network sorts; at this depth it may well)")
		cli.Entry.Set("certificate", false)
		cli.Finish()
		os.Exit(0)
	}

	fmt.Printf("certificate: wires w0=%d, w1=%d carry adjacent values m=%d, m+1=%d\n",
		cert.W0, cert.W1, cert.M, cert.M+1)
	if *verbose {
		fmt.Printf("  D  = %v\n", cert.D)
		fmt.Printf("  π  = %v\n", cert.Pi)
		fmt.Printf("  π′ = %v\n", cert.PiPrime)
	}

	circ, _ := it.ToNetwork()
	if err := cert.Verify(circ); err != nil {
		fail("certificate verification FAILED: " + err.Error())
	}
	journalCertificate(cert, true)
	fmt.Println("certificate verified: the network routes π and π′ identically and never compares m with m+1")
	fmt.Println("conclusion: this network is NOT a sorting network (Corollary 4.1.1)")
	saveCertificate(cert)
}

var (
	saveCert string
	cli      *obs.CLIRun
	prog     *obs.Progress // nil unless -progress
)

// printReports prints the per-block telemetry under -v.
func printReports(reports []core.BlockReport, verbose bool) {
	if !verbose {
		return
	}
	for _, rep := range reports {
		fmt.Printf("  block %d (l=%d): |D| %d -> survivors %d across %d sets (%d collisions) -> kept set %d of size %d (paper bound %.3g)\n",
			rep.Block, rep.Levels, rep.Before, rep.Survivors, rep.SetCount,
			rep.Collisions, rep.ChosenSet, rep.After, rep.PaperBound)
	}
}

// journalAnalysis records the adversary outcome — per-block surviving
// set sizes and collision counts — in the run journal entry.
func journalAnalysis(an *core.Analysis) {
	cli.Entry.Set("k", an.K)
	cli.Entry.Set("d_size", len(an.D))
	cli.Entry.Set("reports", an.Reports)
}

// journalCertificate records the certificate summary.
func journalCertificate(cert *core.Certificate, verified bool) {
	cli.Entry.Set("certificate", map[string]interface{}{
		"w0": cert.W0, "w1": cert.W1, "m": cert.M, "verified": verified,
	})
}

// saveCertificate writes the certificate JSON when -save was given.
func saveCertificate(cert *core.Certificate) {
	if saveCert == "" {
		return
	}
	f, err := os.Create(saveCert)
	if err != nil {
		fail(err.Error())
	}
	defer f.Close()
	if err := cert.WriteJSON(f); err != nil {
		fail(err.Error())
	}
	fmt.Printf("certificate written to %s\n", saveCert)
}

// runCheck verifies a saved certificate against a circuit file.
func runCheck(certPath, netPath string) {
	cf, err := os.Open(certPath)
	if err != nil {
		fail(err.Error())
	}
	defer cf.Close()
	cert, err := core.ReadCertificateJSON(cf)
	if err != nil {
		fail(err.Error())
	}
	nf, err := os.Open(netPath)
	if err != nil {
		fail(err.Error())
	}
	defer nf.Close()
	circ, err := network.ReadText(nf)
	if err != nil {
		fail("parse: " + err.Error())
	}
	if err := cert.Verify(circ); err != nil {
		fail("certificate REJECTED: " + err.Error())
	}
	cli.Entry.Set("check", certPath)
	journalCertificate(cert, true)
	fmt.Printf("certificate %s verified against %s: the circuit is NOT a sorting network\n", certPath, netPath)
}

// reportCanceled journals the partial progress of a canceled adversary
// run (per-block reports up to the cut, the surviving-set size, and
// the ErrCanceled fields), prints an honest truncated summary, and
// exits through the shared path: 0 after a deadline, 130 after ^C. No
// certificate is derived — D is noncolliding only for the prefix of
// the network actually processed.
func reportCanceled(an *core.Analysis, err error, verbose bool) {
	var ce *par.ErrCanceled
	if errors.As(err, &ce) {
		cli.Entry.SetPartial(ce.Fields())
	}
	journalAnalysis(an)
	cli.Entry.Set("certificate", false)
	printReports(an.Reports, verbose)
	fmt.Printf("run canceled (%v) after %d completed blocks; surviving set so far: %d wires\n",
		err, len(an.Reports), len(an.D))
	fmt.Println("(no certificate: the analysis covers only a prefix of the network)")
	cli.Finish()
	os.Exit(cli.ExitCode())
}

// loadCircuit reads a network.WriteText circuit file or exits.
func loadCircuit(path string) *network.Network {
	f, err := os.Open(path)
	if err != nil {
		fail(err.Error())
	}
	defer f.Close()
	circ, err := network.ReadText(f)
	if err != nil {
		fail("parse: " + err.Error())
	}
	return circ
}

// optimalConfig carries the -optimal flag cluster.
type optimalConfig struct {
	memoSpec   string
	workers    int
	verbose    bool
	resume     string
	spill      string
	spillBytes int64
}

// optimalMemo builds the transposition table for an n-wire -optimal
// run: nil means "off"; with -spill the table is disk-backed via
// core.OpenSpillMemo (reopened warm when the file already exists). The
// spill tag is the build's git describe (falling back to the Go
// version), so a file written by different code is refused rather than
// misread.
func optimalMemo(n int, cfg optimalConfig) (m *core.Memo, warm bool) {
	var ram int64
	switch cfg.memoSpec {
	case "off":
		if cfg.spill != "" {
			fail("-memo off cannot be combined with -spill (there is no table to spill)")
		}
		return nil, false
	case "", "auto":
		ram = core.AutoMemoBytes(n)
	default:
		b, err := strconv.ParseInt(cfg.memoSpec, 10, 64)
		if err != nil || b <= 0 {
			fail(fmt.Sprintf("-memo must be a positive byte count, \"auto\", or \"off\" (got %q)", cfg.memoSpec))
		}
		ram = b
	}
	if cfg.spill == "" {
		return core.NewMemo(ram), false
	}
	tag := cli.Entry.Git
	if tag == "" {
		tag = runtime.Version()
	}
	m, warm, err := core.OpenSpillMemo(cfg.spill, ram, cfg.spillBytes, tag)
	if err != nil {
		fail(err.Error())
	}
	mode := "cold"
	if warm {
		mode = "warm (reopened with the previous run's bounds)"
	}
	ms := m.Stats()
	fmt.Printf("transposition table spill: %s, %d bytes on disk, %s\n", cfg.spill, ms.DiskBytes, mode)
	cli.Entry.Set("spill", map[string]any{"path": cfg.spill, "disk_bytes": ms.DiskBytes, "warm": warm})
	return m, warm
}

// printMemoStats prints and journals the table's final counters.
func printMemoStats(m *core.Memo, noMemo bool) {
	cli.Entry.Set("memo", m.Stats())
	if noMemo {
		fmt.Println("transposition table: off")
		return
	}
	ms := m.Stats()
	fmt.Printf("transposition table: %d bytes, %d hits / %d misses / %d stores / %d evictions\n",
		ms.Bytes, ms.Hits, ms.Misses, ms.Stores, ms.Evictions)
	if ms.DiskBytes > 0 {
		fmt.Printf("spill tier: %d bytes, %d disk hits / %d demotions\n",
			ms.DiskBytes, ms.DiskHits, ms.Demotions)
	}
}

// runOptimal runs the exact branch-and-bound optimum search on circ —
// the largest noncolliding [M_0]-set any {S0,M0,L0}-pattern admits,
// i.e. the ceiling on what any adversary of the paper's form could
// achieve there. The transposition table is sized by -memo (optionally
// spill-backed by -spill); with -journal the prefix frontier is
// checkpointed, and -resume restarts from such a checkpoint with a
// byte-identical result.
func runOptimal(ctx context.Context, circ *network.Network, cfg optimalConfig) {
	n := circ.Wires()
	if n > core.MaxOptimalWires {
		fail(fmt.Sprintf("-optimal handles at most %d wires (core.MaxOptimalWires); the circuit has %d", core.MaxOptimalWires, n))
	}
	opt := core.OptimalOptions{Workers: cfg.workers, Progress: prog}
	opt.Memo, _ = optimalMemo(n, cfg)
	opt.NoMemo = opt.Memo == nil
	defer opt.Memo.Close()
	cli.Entry.Set("optimal", true)
	cli.Entry.Set("memo_bytes", opt.Memo.Stats().Bytes) // 0 when off

	// Frontier checkpointing and resume. The records ride the run
	// journal; parsing a prior journal yields the prefixes to skip and
	// the incumbent to seed, which by DESIGN.md decision 14 reproduces
	// the uninterrupted run exactly.
	fp := core.NetworkFingerprint(circ)
	prefixes := core.OptimalPrefixes(n)
	var fr *coord.Frontier
	if cfg.resume != "" {
		var err error
		fr, err = coord.ParseResumeJournalFile(cfg.resume)
		if err != nil {
			fail("-resume: " + err.Error())
		}
		if fr.Net != fp {
			fail(fmt.Sprintf("-resume: journal %s checkpoints network %s, but this run searches %s (different circuit)", cfg.resume, fr.Net, fp))
		}
		opt.SkipPrefix = fr.Skip
		opt.SeedIncumbent = fr.Seed
		fmt.Printf("resuming from %s: seq %d, %d/%d prefixes skipped\n",
			cfg.resume, fr.LastSeq, len(fr.Done), prefixes)
		cli.Entry.Set("resume", map[string]any{"from": cfg.resume, "from_seq": fr.LastSeq, "skipped": len(fr.Done)})
	}
	fw := coord.NewFrontierWriter(cli.Journal(), cli.Entry.Run)
	if err := fw.Init(fp, n, prefixes, opt.SeedIncumbent); err != nil {
		fail("journal: " + err.Error())
	}
	if fr != nil {
		if err := fw.Resumed(cfg.resume, fr.LastSeq, len(fr.Done), prefixes, fr.Seed); err != nil {
			fail("journal: " + err.Error())
		}
	}
	var journalErr sync.Once
	opt.OnPrefixDone = func(p int, inc uint64) {
		if err := fw.PrefixDone(p, inc); err != nil {
			journalErr.Do(func() {
				fmt.Fprintf(os.Stderr, "adversary: frontier checkpoint: %v (search continues; the journal is incomplete)\n", err)
			})
		}
	}

	sp := obs.NewSpan("optimal", obs.A("n", n))
	start := time.Now()
	size, p, set, err := core.OptimalNoncollidingOpt(ctx, circ, opt)
	sp.End()
	cli.Entry.AddSpans(sp)
	if err != nil {
		cli.Entry.Set("memo", opt.Memo.Stats())
		var ce *par.ErrCanceled
		if errors.As(err, &ce) {
			cli.Entry.SetPartial(ce.Fields())
		}
		fmt.Printf("optimum search canceled (%v); a partial enumeration proves no optimum, so none is reported\n", err)
		cli.Finish()
		os.Exit(cli.ExitCode())
	}
	cli.Entry.Set("optimal_d", size)
	fmt.Printf("optimal noncolliding [M_0]-set: %d of %d wires (exact, %v)\n",
		size, n, time.Since(start).Round(time.Millisecond))
	if cfg.verbose {
		fmt.Printf("  witness pattern: %v\n", p)
		fmt.Printf("  set: %v\n", set)
	}
	printMemoStats(opt.Memo, opt.NoMemo)
}

// runOptimalWorker joins a cmd/optcoord coordinator: the circuit comes
// over HTTP, leased frontier chunks are searched with this process's
// table (optionally spill-backed), and packed results are reported
// back. Prints the final merged result when the frontier completes.
func runOptimalWorker(ctx context.Context, url string, cfg optimalConfig) {
	circ, err := coord.FetchNet(ctx, nil, url)
	if err != nil {
		fail(err.Error())
	}
	n := circ.Wires()
	fmt.Printf("coordinator %s: %v, fingerprint %s\n", url, circ, core.NetworkFingerprint(circ))
	cli.Entry.Set("coord", url)
	cli.Entry.Set("n", n)

	m, _ := optimalMemo(n, cfg)
	defer m.Close()
	start := time.Now()
	packed, err := coord.RunWorker(ctx, url, coord.WorkerOptions{
		Workers:  cfg.workers,
		Memo:     m,
		Progress: prog,
	})
	cli.Entry.Set("memo", m.Stats())
	if err != nil {
		var ce *par.ErrCanceled
		if errors.As(err, &ce) {
			cli.Entry.SetPartial(ce.Fields())
			fmt.Printf("worker canceled (%v)\n", err)
			cli.Finish()
			os.Exit(cli.ExitCode())
		}
		fail(err.Error())
	}
	size, p, set := core.DecodeOptimalWitness(n, packed)
	cli.Entry.Set("optimal_d", size)
	fmt.Printf("optimal noncolliding [M_0]-set: %d of %d wires (exact, %v)\n",
		size, n, time.Since(start).Round(time.Millisecond))
	if cfg.verbose {
		fmt.Printf("  witness pattern: %v\n", p)
		fmt.Printf("  set: %v\n", set)
	}
	printMemoStats(m, m == nil)
}

// runOnFile loads a circuit, recovers its iterated RDN structure, and
// runs the full pipeline against the loaded circuit.
func runOnFile(ctx context.Context, path string, l, k int, verbose bool) {
	f, err := os.Open(path)
	if err != nil {
		fail(err.Error())
	}
	defer f.Close()
	circ, err := network.ReadText(f)
	if err != nil {
		fail("parse: " + err.Error())
	}
	n := circ.Wires()
	if !bits.IsPow2(n) {
		fail("circuit width must be a power of two")
	}
	if l <= 0 {
		l = bits.Lg(n)
	}
	fmt.Printf("loaded: %v from %s\n", circ, path)
	it, ok := delta.DecomposeIterated(circ, l)
	if !ok {
		fail(fmt.Sprintf("the circuit is not a (k,%d)-iterated reverse delta network; the paper's lower bound does not apply to it", l))
	}
	fmt.Printf("recovered: %d reverse delta blocks of %d levels\n", it.Blocks(), l)
	cli.Entry.Set("file", path)
	cli.Entry.Set("n", n)
	cli.Entry.Set("blocks", it.Blocks())

	sp := obs.NewSpan("theorem41", obs.A("n", n), obs.A("blocks", it.Blocks()))
	an, terr := core.Theorem41Prog(ctx, it, k, prog)
	sp.End()
	cli.Entry.AddSpans(sp)
	if terr != nil {
		reportCanceled(an, terr, verbose)
	}
	journalAnalysis(an)

	printReports(an.Reports, verbose)
	fmt.Printf("surviving noncolliding set D: %d wires\n", len(an.D))
	cert, err := an.Certificate()
	if err != nil {
		fmt.Printf("no certificate: %v\n", err)
		cli.Entry.Set("certificate", false)
		cli.Finish()
		os.Exit(0)
	}
	fmt.Printf("certificate: wires w0=%d, w1=%d, adjacent values m=%d, m+1=%d\n",
		cert.W0, cert.W1, cert.M, cert.M+1)
	if err := cert.Verify(circ); err != nil {
		fail("certificate verification FAILED: " + err.Error())
	}
	journalCertificate(cert, true)
	fmt.Println("certificate verified against the loaded circuit: NOT a sorting network")
	saveCertificate(cert)
}

// fail reports a fatal error and exits 1. Finish tears down the whole
// run — journal flush, -pprof listener close, signal-watcher release —
// so no goroutine or socket outlives an error exit.
func fail(msg string) {
	fmt.Fprintln(os.Stderr, "adversary:", msg)
	if cli != nil {
		cli.Entry.Set("error", msg)
		cli.Finish()
	}
	os.Exit(1)
}
