// Command obsreport turns the repo's observability artifacts — run
// journals (JSONL, written by the CLIs' -journal flag) and recorded
// benchmark snapshots (BENCH_PR*.json, written by benchjson) — into
// human-readable reports:
//
//   - Per-run summaries: one block per invocation found in the
//     journals, with wall/CPU time, peak memory, seed, and the
//     heartbeat trail the run left while -progress was on.
//   - Killed-run detection: a heartbeat trail whose run ID has no
//     final journal entry is reported as INCOMPLETE with the last
//     heartbeat's counters — the honest partial progress of a run
//     that was killed or OOM'd mid-flight.
//   - Run-over-run deltas: consecutive completed runs of the same
//     command and arguments are compared (wall time, peak RSS), so a
//     slowdown across a code change shows up without a profiler.
//   - Bench trajectory: -bench takes a comma-separated list of
//     benchjson files (e.g. the committed BENCH_PR*.json history) and
//     renders a markdown table of ns/op per snapshot with the
//     first→last delta, ready to paste into EXPERIMENTS.md.
//
// Usage:
//
//	obsreport run.jsonl [more.jsonl ...]
//	obsreport -require-heartbeats run.jsonl        # CI smoke: fail unless heartbeats present
//	obsreport -bench BENCH_PR2.json,BENCH_PR4.json,BENCH_PR6.json [-filter REGEX]
//
// Exit status: 0 normally; 1 on parse errors or when
// -require-heartbeats finds no heartbeat records.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func main() {
	bench := flag.String("bench", "", "comma-separated benchjson files: render a markdown ns/op trajectory table instead of a journal report")
	filter := flag.String("filter", "", "with -bench: regexp restricting which benchmarks appear in the table (default: all)")
	requireHB := flag.Bool("require-heartbeats", false, "exit 1 unless at least one heartbeat record is present (CI smoke for -progress)")
	flag.Parse()

	if *bench != "" {
		files := splitList(*bench)
		if len(files) == 0 {
			fail("-bench needs at least one file")
		}
		if err := BenchTable(os.Stdout, files, *filter); err != nil {
			fail(err.Error())
		}
		return
	}

	if flag.NArg() == 0 {
		fail("no journal files given (and no -bench); see -h")
	}
	var recs []Record
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fail(err.Error())
		}
		r, err := ParseJournal(f)
		f.Close()
		if err != nil {
			fail(fmt.Sprintf("%s: %v", path, err))
		}
		recs = append(recs, r...)
	}
	runs := GroupRuns(recs)
	WriteReport(os.Stdout, runs)
	if *requireHB {
		beats := 0
		for _, r := range runs {
			beats += len(r.Beats)
		}
		if beats == 0 {
			fail("-require-heartbeats: no heartbeat records found (was the run started with -progress and -journal?)")
		}
		fmt.Printf("heartbeats: %d records across %d run(s)\n", beats, len(runs))
	}
}

// Record is one journal line — a run entry (no "type" field;
// obs.Entry's schema), a heartbeat ("type":"heartbeat"; obs.Sample's
// schema), or a frontier checkpoint from the resumable optimum search
// ("type":"frontier_init" / "prefix_done" / "resumed"; internal/coord's
// schemas). The schemas share Time/Cmd/Run, so one struct decodes them
// all and Type discriminates.
type Record struct {
	Type string `json:"type"`
	Time string `json:"time"`
	Cmd  string `json:"cmd"`
	Run  string `json:"run"`

	// Entry fields.
	Args   []string `json:"args"`
	Seed   int64    `json:"seed"`
	WallMS float64  `json:"wall_ms"`
	CPUMS  float64  `json:"cpu_ms"`
	Mem    struct {
		MaxRSSKB int64 `json:"max_rss_kb"`
	} `json:"mem"`
	Interrupted bool           `json:"interrupted"`
	TimedOut    bool           `json:"timed_out"`
	Partial     map[string]any `json:"partial"`
	Extra       map[string]any `json:"extra"`

	// Heartbeat fields.
	Seq       int64          `json:"seq"`
	ElapsedMS float64        `json:"elapsed_ms"`
	Frac      float64        `json:"frac"`
	EtaMS     float64        `json:"eta_ms"`
	Fields    map[string]any `json:"fields"`
	Final     bool           `json:"final"`

	// Frontier-checkpoint fields (internal/coord records).
	Net       string `json:"net"`
	Prefixes  int    `json:"prefixes"`
	Prefix    int    `json:"prefix"`
	Incumbent uint64 `json:"incumbent"`
	From      string `json:"from"`
	FromSeq   int    `json:"from_seq"`
	Skipped   int    `json:"skipped"`
}

// ParseJournal reads one JSONL journal. Unparseable lines are an
// error — a corrupt journal should be noticed, not skipped — except
// for blank lines, which are tolerated.
func ParseJournal(r io.Reader) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec Record
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return nil, fmt.Errorf("line %d: %v", line, err)
		}
		recs = append(recs, rec)
	}
	return recs, sc.Err()
}

// Run is one invocation reconstructed from the journal: its entry (nil
// when the process died before writing one), its heartbeat trail, and
// its frontier checkpoints, all in journal order.
type Run struct {
	ID    string
	Cmd   string
	Entry *Record
	Beats []*Record

	// Frontier-checkpoint trail (resumable optimum search).
	Init       *Record // frontier_init, when present
	Resumed    *Record // resumed, when present
	DonePrefix int     // count of prefix_done records
	LastSeq    int64   // highest frontier record seq
}

// Complete reports whether the run wrote its final entry.
func (r *Run) Complete() bool { return r.Entry != nil }

// GroupRuns correlates entries with their heartbeat trails by run ID,
// preserving journal order. Entries from journals predating run IDs
// get a synthetic per-line ID, so old journals still report (without
// heartbeat correlation).
func GroupRuns(recs []Record) []*Run {
	var runs []*Run
	index := map[string]*Run{}
	get := func(id, cmd string) *Run {
		if r, ok := index[id]; ok {
			return r
		}
		r := &Run{ID: id, Cmd: cmd}
		index[id] = r
		runs = append(runs, r)
		return r
	}
	for i := range recs {
		rec := &recs[i]
		id := rec.Run
		if id == "" {
			id = fmt.Sprintf("(pre-heartbeat journal, record %d)", i+1)
		}
		r := get(id, rec.Cmd)
		switch rec.Type {
		case "heartbeat":
			r.Beats = append(r.Beats, rec)
		case "frontier_init":
			r.Init = rec
			if rec.Seq > r.LastSeq {
				r.LastSeq = rec.Seq
			}
		case "prefix_done":
			r.DonePrefix++
			if rec.Seq > r.LastSeq {
				r.LastSeq = rec.Seq
			}
		case "resumed":
			r.Resumed = rec
			if rec.Seq > r.LastSeq {
				r.LastSeq = rec.Seq
			}
		default:
			r.Entry = rec
		}
	}
	return runs
}

// WriteReport renders per-run summaries and run-over-run deltas.
func WriteReport(w io.Writer, runs []*Run) {
	// prev maps cmd+args → the previous completed run, for deltas.
	prev := map[string]*Record{}
	for _, r := range runs {
		status := "completed"
		failed := false
		switch {
		case !r.Complete():
			status = "INCOMPLETE (heartbeat trail with no final entry — killed or OOM'd)"
		case r.Entry.Interrupted:
			status = "interrupted"
		case r.Entry.TimedOut:
			status = "timed out"
		default:
			// A CLI fail() flushes an orderly entry with the error
			// message under extra.error — that run completed its
			// teardown but not its work.
			if msg, ok := r.Entry.Extra["error"].(string); ok && msg != "" {
				status = "failed: " + msg
				failed = true
			}
		}
		fmt.Fprintf(w, "run %s\n", r.ID)
		fmt.Fprintf(w, "  cmd %s  status %s\n", r.Cmd, status)
		if e := r.Entry; e != nil {
			fmt.Fprintf(w, "  started %s  args %s\n", e.Time, strings.Join(e.Args, " "))
			fmt.Fprintf(w, "  wall %s  cpu %s  peak rss %s  seed %d\n",
				fmtMS(e.WallMS), fmtMS(e.CPUMS), fmtKB(e.Mem.MaxRSSKB), e.Seed)
			if len(e.Partial) > 0 {
				fmt.Fprintf(w, "  partial progress: %s\n", fmtFields(e.Partial))
			}
			key := r.Cmd + " " + strings.Join(e.Args, " ")
			if p := prev[key]; p != nil && p.WallMS > 0 {
				fmt.Fprintf(w, "  vs previous identical run: wall %+.1f%%, peak rss %+.1f%%\n",
					(e.WallMS/p.WallMS-1)*100, pctDelta(e.Mem.MaxRSSKB, p.Mem.MaxRSSKB))
			}
			if !e.Interrupted && !e.TimedOut && !failed {
				prev[key] = e
			}
		}
		if r.Resumed != nil {
			fmt.Fprintf(w, "  resumed from seq %d, %d/%d prefixes skipped (from %s)\n",
				r.Resumed.FromSeq, r.Resumed.Skipped, r.Resumed.Prefixes, r.Resumed.From)
		}
		if r.Init != nil || r.DonePrefix > 0 {
			line := fmt.Sprintf("  frontier checkpoints: %d", r.DonePrefix)
			if r.Init != nil {
				line += fmt.Sprintf("/%d prefixes done (net %s)", r.Init.Prefixes, shortNet(r.Init.Net))
			} else {
				line += " prefixes done (no frontier_init in these journals)"
			}
			line += fmt.Sprintf(", last seq %d", r.LastSeq)
			fmt.Fprintln(w, line)
		}
		if n := len(r.Beats); n > 0 {
			last := r.Beats[n-1]
			fmt.Fprintf(w, "  heartbeats %d (seq %d..%d)\n", n, r.Beats[0].Seq, last.Seq)
			line := fmt.Sprintf("  last heartbeat: +%s", fmtMS(last.ElapsedMS))
			if last.Frac > 0 {
				line += fmt.Sprintf("  %.1f%% done", last.Frac*100)
			}
			if last.EtaMS > 0 && !last.Final {
				line += fmt.Sprintf("  eta %s", fmtMS(last.EtaMS))
			}
			if len(last.Fields) > 0 {
				line += "  " + fmtFields(last.Fields)
			}
			fmt.Fprintln(w, line)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%d run(s): %d completed, %d incomplete\n",
		len(runs), countComplete(runs), len(runs)-countComplete(runs))
}

func countComplete(runs []*Run) int {
	n := 0
	for _, r := range runs {
		if r.Complete() {
			n++
		}
	}
	return n
}

// benchDoc mirrors the benchjson document schema (cmd/benchjson).
type benchDoc struct {
	Benchmarks []struct {
		Name    string  `json:"name"`
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"benchmarks"`
}

// BenchTable renders a markdown ns/op trajectory across the given
// benchjson snapshots, one column per file (labeled from the filename:
// BENCH_PR6.json → PR6), one row per benchmark name present in any of
// them, with a first→last delta column. filter restricts rows to
// matching names ("" = all).
func BenchTable(w io.Writer, files []string, filter string) error {
	var filterRE *regexp.Regexp
	if filter != "" {
		var err error
		if filterRE, err = regexp.Compile(filter); err != nil {
			return fmt.Errorf("bad -filter regexp: %v", err)
		}
	}
	labels := make([]string, len(files))
	cols := make([]map[string]float64, len(files))
	var order []string
	seen := map[string]bool{}
	for i, path := range files {
		labels[i] = benchLabel(path)
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		var doc benchDoc
		err = json.NewDecoder(f).Decode(&doc)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %v", path, err)
		}
		cols[i] = map[string]float64{}
		for _, b := range doc.Benchmarks {
			name := stripProcs(b.Name)
			if filterRE != nil && !filterRE.MatchString(name) {
				continue
			}
			cols[i][name] = b.NsPerOp
			if !seen[name] {
				seen[name] = true
				order = append(order, name)
			}
		}
	}
	sort.Strings(order)

	fmt.Fprintf(w, "| benchmark |")
	for _, l := range labels {
		fmt.Fprintf(w, " %s ns/op |", l)
	}
	fmt.Fprintf(w, " %s→%s |\n", labels[0], labels[len(labels)-1])
	fmt.Fprintf(w, "|---|")
	for range labels {
		fmt.Fprintf(w, "---:|")
	}
	fmt.Fprintf(w, "---:|\n")
	for _, name := range order {
		fmt.Fprintf(w, "| %s |", strings.TrimPrefix(name, "Benchmark"))
		for i := range cols {
			if v, ok := cols[i][name]; ok {
				fmt.Fprintf(w, " %s |", fmtNs(v))
			} else {
				fmt.Fprintf(w, " — |")
			}
		}
		first, okF := cols[0][name]
		last, okL := cols[len(cols)-1][name]
		switch {
		case okF && okL && first > 0:
			fmt.Fprintf(w, " %+.1f%% |\n", (last/first-1)*100)
		case okL:
			fmt.Fprintf(w, " new |\n")
		default:
			fmt.Fprintf(w, " gone |\n")
		}
	}
	return nil
}

// benchLabel derives a column label from a snapshot path:
// "bench/BENCH_PR6.json" → "PR6".
func benchLabel(path string) string {
	base := filepath.Base(path)
	base = strings.TrimSuffix(base, filepath.Ext(base))
	base = strings.TrimPrefix(base, "BENCH_")
	return base
}

// stripProcs removes go test's trailing -GOMAXPROCS suffix, exactly as
// benchjson does, so snapshots recorded at different -cpu line up.
func stripProcs(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		allDigits := i+1 < len(name)
		for _, c := range name[i+1:] {
			if c < '0' || c > '9' {
				allDigits = false
				break
			}
		}
		if allDigits {
			return name[:i]
		}
	}
	return name
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// fmtMS renders a millisecond quantity compactly (1.2s, 450ms, 2m3s).
// shortNet abbreviates a 32-hex-digit network fingerprint for display.
func shortNet(fp string) string {
	if len(fp) > 12 {
		return fp[:12] + "…"
	}
	return fp
}

func fmtMS(ms float64) string {
	switch {
	case ms <= 0:
		return "0"
	case ms < 1000:
		return fmt.Sprintf("%.0fms", ms)
	case ms < 60_000:
		return fmt.Sprintf("%.1fs", ms/1000)
	default:
		m := int(ms / 60_000)
		return fmt.Sprintf("%dm%.0fs", m, ms/1000-float64(m)*60)
	}
}

func fmtKB(kb int64) string {
	switch {
	case kb <= 0:
		return "n/a"
	case kb < 1024:
		return fmt.Sprintf("%d KB", kb)
	default:
		return fmt.Sprintf("%.1f MB", float64(kb)/1024)
	}
}

func fmtNs(v float64) string {
	if v >= 100 || v == float64(int64(v)) {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}

// fmtFields renders a small JSON object as sorted key=value pairs.
// JSON numbers decode as float64; integral ones print as integers, not
// scientific notation.
func fmtFields(m map[string]any) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		v := m[k]
		if f, ok := v.(float64); ok {
			if f == float64(int64(f)) {
				parts[i] = fmt.Sprintf("%s=%d", k, int64(f))
				continue
			}
			parts[i] = fmt.Sprintf("%s=%.4g", k, f)
			continue
		}
		parts[i] = fmt.Sprintf("%s=%v", k, v)
	}
	return strings.Join(parts, " ")
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "obsreport:", msg)
	os.Exit(1)
}

// pctDelta is a percentage change guarded against a zero baseline.
func pctDelta(now, then int64) float64 {
	if then <= 0 {
		return 0
	}
	return (float64(now)/float64(then) - 1) * 100
}
