package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleJournal = `{"time":"2026-08-07T10:00:00Z","cmd":"adversary","run":"adversary-1-a","args":["-n","256"],"seed":7,"wall_ms":1500,"cpu_ms":5000,"mem":{"max_rss_kb":20480}}
{"type":"heartbeat","run":"adversary-2-b","cmd":"adversary","seq":1,"time":"2026-08-07T10:01:00Z","elapsed_ms":1000,"frac":0.25,"eta_ms":3000,"fields":{"optimal.nodes":1000}}
{"type":"heartbeat","run":"adversary-2-b","cmd":"adversary","seq":2,"time":"2026-08-07T10:01:01Z","elapsed_ms":2000,"frac":0.5,"eta_ms":2000,"fields":{"optimal.nodes":2500}}
{"type":"heartbeat","run":"adversary-2-b","cmd":"adversary","seq":3,"time":"2026-08-07T10:01:02Z","elapsed_ms":3000,"frac":0.75,"eta_ms":1000,"fields":{"optimal.nodes":4000}}
{"time":"2026-08-07T10:02:00Z","cmd":"adversary","run":"adversary-3-c","args":["-n","256"],"seed":7,"wall_ms":3000,"cpu_ms":9000,"mem":{"max_rss_kb":40960}}
`

func TestParseAndGroup(t *testing.T) {
	recs, err := ParseJournal(strings.NewReader(sampleJournal))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("got %d records, want 5", len(recs))
	}
	runs := GroupRuns(recs)
	if len(runs) != 3 {
		t.Fatalf("got %d runs, want 3: %+v", len(runs), runs)
	}
	// First and third runs completed with no heartbeats; the middle one
	// is a pure heartbeat trail — the killed-run signature.
	if !runs[0].Complete() || len(runs[0].Beats) != 0 {
		t.Fatalf("run 0 should be a bare completed entry: %+v", runs[0])
	}
	killed := runs[1]
	if killed.Complete() {
		t.Fatalf("run 1 has no entry and must report incomplete: %+v", killed)
	}
	if len(killed.Beats) != 3 {
		t.Fatalf("run 1 should have 3 heartbeats, got %d", len(killed.Beats))
	}
	for i, b := range killed.Beats {
		if b.Seq != int64(i+1) {
			t.Fatalf("heartbeat %d has seq %d, want %d", i, b.Seq, i+1)
		}
	}
}

func TestWriteReport(t *testing.T) {
	recs, err := ParseJournal(strings.NewReader(sampleJournal))
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	WriteReport(&buf, GroupRuns(recs))
	out := buf.String()
	for _, want := range []string{
		"INCOMPLETE",                // the orphan heartbeat trail is flagged
		"heartbeats 3",              // with its trail length
		"75.0% done",                // and the last heartbeat's fraction
		"optimal.nodes",             // and its counters
		"vs previous identical run", // runs 1 and 3 share cmd+args
		"3 run(s): 2 completed, 1 incomplete",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report lacks %q:\n%s", want, out)
		}
	}
	// Wall went 1500 → 3000 ms between the identical runs: +100%.
	if !strings.Contains(out, "wall +100.0%") {
		t.Errorf("run-over-run delta missing or wrong:\n%s", out)
	}
}

// TestWriteReportFailedRun: a CLI fail() flushes an orderly entry with
// extra.error set — the report must say failed, not completed, and the
// failed run must not become the delta baseline for later runs.
func TestWriteReportFailedRun(t *testing.T) {
	const j = `{"time":"2026-08-07T10:00:00Z","cmd":"adversary","run":"adversary-1-a","args":["-n","20"],"wall_ms":8,"extra":{"error":"n must be a power of two"}}
{"time":"2026-08-07T10:01:00Z","cmd":"adversary","run":"adversary-2-b","args":["-n","20"],"wall_ms":9}
`
	recs, err := ParseJournal(strings.NewReader(j))
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	WriteReport(&buf, GroupRuns(recs))
	out := buf.String()
	if !strings.Contains(out, "status failed: n must be a power of two") {
		t.Errorf("failed run not flagged:\n%s", out)
	}
	if strings.Contains(out, "vs previous identical run") {
		t.Errorf("failed run must not be a delta baseline:\n%s", out)
	}
}

// TestWriteReportFrontier: the resumable-search checkpoint records are
// recognized (not mistaken for run entries) and rendered as the resume
// summary plus a checkpoint count; heartbeat accounting is unaffected.
func TestWriteReportFrontier(t *testing.T) {
	const j = `{"type":"frontier_init","run":"adversary-1-a","cmd":"adversary","net":"00112233445566778899aabbccddeeff","n":26,"prefixes":81,"seq":1}
{"type":"prefix_done","run":"adversary-1-a","cmd":"adversary","prefix":0,"incumbent":123,"seq":2}
{"type":"prefix_done","run":"adversary-1-a","cmd":"adversary","prefix":1,"incumbent":456,"seq":3}
{"type":"heartbeat","run":"adversary-1-a","cmd":"adversary","seq":1,"elapsed_ms":50}
{"type":"frontier_init","run":"adversary-2-b","cmd":"adversary","net":"00112233445566778899aabbccddeeff","n":26,"prefixes":81,"seed":456,"seq":1}
{"type":"resumed","run":"adversary-2-b","cmd":"adversary","from":"run.jsonl","from_seq":3,"skipped":2,"prefixes":81,"seed":456,"seq":2}
{"time":"2026-08-07T10:02:00Z","cmd":"adversary","run":"adversary-2-b","args":["-optimal"],"wall_ms":3000}
`
	recs, err := ParseJournal(strings.NewReader(j))
	if err != nil {
		t.Fatal(err)
	}
	runs := GroupRuns(recs)
	if len(runs) != 2 {
		t.Fatalf("got %d runs, want 2", len(runs))
	}
	killed := runs[0]
	if killed.Complete() {
		t.Fatalf("run 0 has only checkpoints and a heartbeat; must be incomplete: %+v", killed)
	}
	if killed.DonePrefix != 2 || killed.Init == nil || killed.LastSeq != 3 {
		t.Fatalf("run 0 frontier state: done=%d init=%v lastSeq=%d", killed.DonePrefix, killed.Init, killed.LastSeq)
	}
	if len(killed.Beats) != 1 {
		t.Fatalf("frontier records must not count as heartbeats: %d beats", len(killed.Beats))
	}
	if runs[1].Resumed == nil || !runs[1].Complete() {
		t.Fatalf("run 1 should be a completed resumed run: %+v", runs[1])
	}

	var buf strings.Builder
	WriteReport(&buf, runs)
	out := buf.String()
	for _, want := range []string{
		"resumed from seq 3, 2/81 prefixes skipped (from run.jsonl)",
		"frontier checkpoints: 2/81 prefixes done",
		"last seq 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report lacks %q:\n%s", want, out)
		}
	}
}

func TestParseJournalRejectsCorrupt(t *testing.T) {
	if _, err := ParseJournal(strings.NewReader("{\"cmd\":\"x\"}\nnot json\n")); err == nil {
		t.Fatal("corrupt journal line must be an error")
	}
}

// writeBench records a minimal benchjson document.
func writeBench(t *testing.T, dir, name string, ns map[string]float64) string {
	t.Helper()
	type b struct {
		Name    string  `json:"name"`
		NsPerOp float64 `json:"ns_per_op"`
	}
	var doc struct {
		Benchmarks []b `json:"benchmarks"`
	}
	for n, v := range ns {
		doc.Benchmarks = append(doc.Benchmarks, b{Name: n, NsPerOp: v})
	}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBenchTable(t *testing.T) {
	dir := t.TempDir()
	old := writeBench(t, dir, "BENCH_PR2.json", map[string]float64{
		"BenchmarkKernel/bits-8": 100,
		"BenchmarkRetired-8":     50,
	})
	nu := writeBench(t, dir, "BENCH_PR6.json", map[string]float64{
		"BenchmarkKernel/bits-1": 80, // GOMAXPROCS suffix differs; must line up
		"BenchmarkFresh-1":       10,
	})
	var buf strings.Builder
	if err := BenchTable(&buf, []string{old, nu}, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"| benchmark | PR2 ns/op | PR6 ns/op | PR2→PR6 |", // labels from filenames
		"| Kernel/bits | 100 | 80 | -20.0% |",             // suffixes stripped, delta computed
		"new",                                             // Fresh only in PR6
		"gone",                                            // Retired only in PR2
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table lacks %q:\n%s", want, out)
		}
	}

	// The filter restricts rows.
	buf.Reset()
	if err := BenchTable(&buf, []string{old, nu}, "Kernel"); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "Fresh") {
		t.Errorf("filtered table still contains Fresh:\n%s", buf.String())
	}
}
