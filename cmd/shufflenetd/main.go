// Command shufflenetd serves the adversary-as-a-service HTTP/JSON API
// (package internal/serve): submit a comparator network and query
// sortability verdicts, halver quality, the paper's Theorem 4.1
// adversary certificate, or the exact noncolliding optimum.
//
// Usage:
//
//	shufflenetd [-addr :8080] [-workers N] [-max-inflight N]
//	            [-timeout 30s] [-max-timeout 2m] [-memo BYTES]
//	            [-cache N] [-coalesce-window 2ms]
//	            [-journal run.jsonl] [-metrics] [-pprof ADDR]
//	            [-progress] [-progress-interval 10s]
//
// Endpoints: POST /v1/check, /v1/halver, /v1/adversary, /v1/optimal
// (JSON bodies; see README "Server"), GET /healthz, and the debug
// surface /debug/progress and /debug/vars on the server's own mux.
//
// Lifecycle: the listener is opened synchronously (a bad -addr fails
// fast), requests are served until SIGINT/SIGTERM, then the server
// drains in-flight requests (http.Server.Shutdown with a 10 s grace)
// and the run journal entry — request totals, shared-memo counters —
// is flushed. -journal additionally records one line per request.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"time"

	"shufflenet/internal/obs"
	"shufflenet/internal/serve"
)

// defaultInflight scales admission control with the machine but never
// below 8: on small containers the engines are brief enough that a
// couple of cores still serve a handful of requests well, and a floor
// of 2 would shed most of a modest burst as 429s.
func defaultInflight() int {
	if n := 2 * runtime.GOMAXPROCS(0); n > 8 {
		return n
	}
	return 8
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "per-request engine parallelism (0 = GOMAXPROCS)")
	maxInflight := flag.Int("max-inflight", defaultInflight(), "admission-control bound on concurrent requests (beyond it: immediate 429)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request deadline (body timeout_ms overrides)")
	maxTimeout := flag.Duration("max-timeout", 2*time.Minute, "ceiling on client-requested deadlines")
	memoBytes := flag.Int64("memo", 64<<20, "process-wide /v1/optimal transposition table budget in bytes (degenerate values clamp to core.MinMemoBytes)")
	cacheEntries := flag.Int("cache", 256, "response-cache entries per endpoint family")
	coalesceWindow := flag.Duration("coalesce-window", 2*time.Millisecond, "how long /v1/check probes wait to share SWAR words with concurrent probes of the same network")
	journal := flag.String("journal", "", "append per-request records and the run entry to this JSONL path")
	metrics := flag.Bool("metrics", false, "dump the metric registry to stderr at shutdown")
	pprofAddr := flag.String("pprof", "", "serve /debug/pprof on this extra address")
	progress := flag.Bool("progress", false, "emit live progress heartbeats (stderr status line + journal records)")
	progressIvl := flag.Duration("progress-interval", 10*time.Second, "cadence of -progress snapshots")
	flag.Parse()

	cli, err := obs.StartCLI("shufflenetd", *journal, *metrics, *pprofAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shufflenetd:", err)
		os.Exit(1)
	}
	ctx := cli.SetupContext(0) // canceled by SIGINT/SIGTERM
	if *progress {
		cli.StartProgress(*progressIvl)
	}

	srv := serve.New(serve.Config{
		Workers:        *workers,
		MaxInFlight:    *maxInflight,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MemoBytes:      *memoBytes,
		CacheEntries:   *cacheEntries,
		CoalesceWindow: *coalesceWindow,
		Journal:        cli.Journal(),
	})
	cli.Entry.Set("addr", *addr)
	cli.Entry.Set("max_inflight", *maxInflight)
	cli.Entry.Set("memo_bytes", *memoBytes)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shufflenetd:", err)
		cli.Entry.Set("error", err.Error())
		cli.Finish()
		os.Exit(1)
	}
	hs := &http.Server{Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()
	fmt.Printf("shufflenetd: listening on %s\n", ln.Addr())

	var exit int
	select {
	case <-ctx.Done():
		// SIGINT/SIGTERM: drain in-flight requests, then leave. A hung
		// handler cannot stall shutdown past the grace period — its
		// request deadline and the Shutdown context both bound it.
		fmt.Fprintln(os.Stderr, "shufflenetd: shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err := hs.Shutdown(sctx)
		cancel()
		if err != nil {
			fmt.Fprintln(os.Stderr, "shufflenetd: shutdown:", err)
			cli.Entry.Set("shutdown_error", err.Error())
		}
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "shufflenetd:", err)
			cli.Entry.Set("error", err.Error())
			exit = 1
		}
	}
	cli.Entry.Set("memo", srv.MemoStats())
	cli.Finish()
	if exit == 0 {
		exit = cli.ExitCode()
		if exit == 130 {
			// A clean drain after SIGINT/SIGTERM is this daemon's normal
			// exit, not a failure.
			exit = 0
		}
	}
	os.Exit(exit)
}
